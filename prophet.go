// Package prophet is the public API of the Prophet reproduction: a
// profile-guided temporal prefetching framework (Li et al., ISCA 2025)
// implemented on top of a trace-driven CPU/cache/DRAM simulator.
//
// The package exposes three layers:
//
//   - Workload catalog: the SPEC-CPU-like irregular workloads and
//     CRONO-style graph workloads of the paper's evaluation, resolved by
//     name (Workload, Catalog, Find).
//   - Evaluator: a stateful evaluation service (New) that owns a pluggable
//     scheme registry, a per-workload baseline cache, and a concurrent
//     sweep engine. Run executes one (workload, scheme) pair; Sweep fans a
//     job list out over a worker pool — or, with WithBackends, shards it
//     across a fleet of remote prophetd daemons — with deterministic,
//     ordered results.
//   - Session: the stateful Figure 5 loop — Profile inputs with the
//     simplified prefetcher, learn counters across inputs, Optimize into a
//     Binary, and Run it on any workload, reusing the evaluator's cached
//     baselines.
//
// Everything is deterministic: the same calls return bit-identical results,
// whether a sweep runs on one worker or sixteen.
//
// Quickstart:
//
//	ev := prophet.New(prophet.WithELAcc(0.15), prophet.WithWorkers(8))
//	w, _ := prophet.Find("omnetpp")
//	r, _ := ev.Run(context.Background(), w, prophet.Prophet)
//	fmt.Printf("Prophet speedup: %.2fx\n", r.Speedup)
//
//	// Sweep several workloads and schemes concurrently; the baseline for
//	// each workload is simulated once and shared across schemes.
//	mcf, _ := prophet.Find("mcf")
//	results, _ := ev.Sweep(context.Background(),
//		prophet.Jobs([]prophet.Workload{w, mcf}, prophet.Triangel, prophet.Prophet)...)
//
// The profile-guided pipeline (Figure 5) runs through a Session:
//
//	s := ev.NewSession()
//	s.Profile(w)
//	bin := s.Optimize()
//	r, _ := s.Run(context.Background(), bin, w)
//
// Custom prefetching schemes plug in through RegisterScheme; the built-in
// schemes (baseline, triage, triangel, rpg2, prophet) self-register from
// their packages the same way.
//
// The pre-Evaluator entry points (Evaluate, EvaluateWith, Pipeline) remain
// as thin deprecated shims for one release; see README.md for the migration
// table.
package prophet

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"prophet/internal/graphs"
	"prophet/internal/ingest"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/workloads"
)

// Workload identifies a runnable workload from the catalog. The zero value
// is invalid; construct with Find, or fill Name directly — resolution
// happens lazily at run time, and unknown names surface as errors from
// Evaluator.Run (never a panic).
//
// Beyond the catalog, a "file:<path>" name replays an exported trace file
// (cmd/tracegen output, plain or gzip), and an ingest-format prefix
// ("champsim:<path>", "csv:<path>") streams an external trace through the
// internal/ingest converters — so recorded and third-party traces run
// through the same Evaluator/Sweep/daemon machinery as generated ones.
// Sources lists the full prefix table.
type Workload struct {
	// Name is the catalog identifier ("mcf", "gcc_166", "bfs_100000_16"),
	// a "file:<path>" trace-file reference, or an external-trace reference
	// like "champsim:<path>".
	Name string
	// Records is the trace length in memory records (0 = catalog default).
	Records uint64
}

// Catalog lists every available workload name: the SPEC-like set, all gcc /
// astar / soplex inputs, and the CRONO graph workloads.
func Catalog() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	for _, g := range graphs.CRONO() {
		out = append(out, g.Name)
	}
	return out
}

// WorkloadInfo describes one catalog entry — what tooling (the prophetd
// daemon's GET /v1/workloads, scripted sweeps) needs to enumerate and size
// runs without resolving each workload by hand.
type WorkloadInfo struct {
	// Name is the catalog identifier, resolvable by Find.
	Name string `json:"name"`
	// Kind is "spec" for the SPEC-CPU-like generators or "graph" for the
	// CRONO graph workloads.
	Kind string `json:"kind"`
	// DefaultRecords is the trace length used when Workload.Records is 0.
	DefaultRecords uint64 `json:"defaultRecords"`
}

// CatalogInfo lists every catalog workload with its metadata, in Catalog
// order (SPEC-like set first, then the CRONO graphs).
func CatalogInfo() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Kind: "spec", DefaultRecords: w.Spec.Records})
	}
	for _, g := range graphs.CRONO() {
		out = append(out, WorkloadInfo{Name: g.Name, Kind: "graph", DefaultRecords: graphs.DefaultRecords})
	}
	return out
}

// Find resolves a workload by name, validating it against the catalog.
// Graph workloads follow the algorithm_nodes_param grammar and need not be
// in the CRONO set.
func Find(name string) (Workload, error) {
	w := Workload{Name: name}
	if _, err := w.factory(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// WithRecords returns a copy of the workload with an explicit trace length.
// The copy stays fully resolvable: because resolution is lazy, there is no
// way to end up with a workload whose override silently dropped — an
// unresolvable name errors out at Run time instead.
func (w Workload) WithRecords(records uint64) Workload {
	w.Records = records
	return w
}

// factory resolves the workload name to a trace factory. Every call
// re-resolves, so hand-constructed Workload values work and errors surface
// where the workload is used.
func (w Workload) factory() (pipeline.SourceFactory, error) {
	if w.Name == "" {
		return nil, fmt.Errorf("prophet: empty workload name")
	}
	records := w.Records
	if wl, ok := workloads.Get(w.Name); ok {
		return func() mem.Source { return wl.Source(records) }, nil
	}
	if g, err := graphs.Parse(w.Name); err == nil {
		return func() mem.Source { return g.Source(records) }, nil
	}
	if path, ok := strings.CutPrefix(w.Name, "file:"); ok {
		// The parsed trace is shared through a small cache; the factory
		// then replays the in-memory records, so the multi-pass schemes
		// (RPG2, Prophet) and multi-scheme sweeps over one file see
		// identical streams without re-reading or re-decoding it.
		recs, err := readTraceCached(path)
		if err != nil {
			return nil, fmt.Errorf("prophet: workload %q: %w", w.Name, err)
		}
		return func() mem.Source {
			src := mem.Source(mem.NewSliceSource(recs))
			if records > 0 {
				src = mem.Limit(src, records)
			}
			return src
		}, nil
	}
	if f, path, ok := ingest.Split(w.Name); ok {
		// External traces are streamed, not materialized: each pass
		// re-opens and re-decodes the file in O(block) memory. Because
		// mem.Source has no error channel, a full validation pass runs
		// here at resolution time (cached by size/mtime, metadata only),
		// so corrupt or truncated traces fail loudly before any
		// simulation consumes a silently short stream.
		if _, err := ingestCountCached(f, path); err != nil {
			return nil, fmt.Errorf("prophet: workload %q: %w", w.Name, err)
		}
		return func() mem.Source {
			src := mem.Source(openExternal(f, path))
			if records > 0 {
				src = mem.Limit(src, records)
			}
			return src
		}, nil
	}
	return nil, fmt.Errorf("prophet: unknown workload %q", w.Name)
}

// externalPath returns the on-disk path behind a workload backed by a
// mutable external file — "file:" replays and every registered ingest format
// — or "" for catalog/graph workloads. Dispatch pinning (backends.go) and
// the durable result store (store.go) both branch on this: external files
// exist only on the local host and can change under the same name.
func externalPath(name string) string {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		return path
	}
	if _, path, ok := ingest.Split(name); ok {
		return path
	}
	return ""
}

// externalSource adapts an ingest.FileReader to a plain mem.Source,
// releasing the file as soon as the stream ends. A source abandoned
// mid-stream (a Limit cut, an aborted sweep) is closed by the runtime's file
// finalizer instead — acceptable for the handful of passes a run makes.
type externalSource struct {
	r *ingest.FileReader
}

func openExternal(f ingest.Format, path string) *externalSource {
	r, err := ingest.OpenFile(f, path)
	if err != nil {
		// The file validated at resolution time; losing it between then
		// and the pass is the same mid-run mutation race file: accepts.
		// An empty stream keeps the run deterministic and error-free.
		return &externalSource{}
	}
	return &externalSource{r: r}
}

// Next implements mem.Source.
func (s *externalSource) Next() (mem.Access, bool) {
	if s.r == nil {
		return mem.Access{}, false
	}
	a, ok := s.r.Next()
	if !ok {
		s.r.Close()
		s.r = nil
	}
	return a, ok
}

// ingestCountCache memoizes external-trace validation by path metadata, so a
// 5-scheme sweep over one champsim: workload validates the file once, not
// once per job. Only the record count is retained — never the records.
var ingestCountCache struct {
	sync.Mutex
	entries map[string]ingestCountEntry
	order   []string // FIFO of cached keys
}

type ingestCountEntry struct {
	count   uint64
	size    int64
	modTime time.Time
}

func ingestCountCached(f ingest.Format, path string) (uint64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	key := f.Name + ":" + path
	ingestCountCache.Lock()
	if e, ok := ingestCountCache.entries[key]; ok && e.size == fi.Size() && e.modTime.Equal(fi.ModTime()) {
		ingestCountCache.Unlock()
		return e.count, nil
	}
	ingestCountCache.Unlock()
	n, err := ingest.Count(f, path)
	if err != nil {
		return 0, err
	}
	ingestCountCache.Lock()
	if ingestCountCache.entries == nil {
		ingestCountCache.entries = map[string]ingestCountEntry{}
	}
	if _, ok := ingestCountCache.entries[key]; !ok {
		ingestCountCache.order = append(ingestCountCache.order, key)
		if len(ingestCountCache.order) > traceCacheMax {
			delete(ingestCountCache.entries, ingestCountCache.order[0])
			ingestCountCache.order = ingestCountCache.order[1:]
		}
	}
	ingestCountCache.entries[key] = ingestCountEntry{count: n, size: fi.Size(), modTime: fi.ModTime()}
	ingestCountCache.Unlock()
	return n, nil
}

// traceCache holds the few most recently used parsed trace files, keyed by
// path and invalidated on size/mtime change. Without it, every factory()
// resolution — one per Find, one per sweep job — re-reads and re-decodes
// the whole file; a 5-scheme sweep over one trace would hold 5 copies.
var traceCache struct {
	sync.Mutex
	entries map[string]traceEntry
	order   []string // FIFO of cached paths
}

type traceEntry struct {
	recs    []mem.Access
	size    int64
	modTime time.Time
}

const traceCacheMax = 4

// readTraceCached loads a trace file through the cache. The records slice
// is shared read-only across callers (SliceSource copies only a cursor).
func readTraceCached(path string) ([]mem.Access, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	traceCache.Lock()
	if e, ok := traceCache.entries[path]; ok && e.size == fi.Size() && e.modTime.Equal(fi.ModTime()) {
		traceCache.Unlock()
		return e.recs, nil
	}
	traceCache.Unlock()
	recs, err := mem.ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	traceCache.Lock()
	if traceCache.entries == nil {
		traceCache.entries = map[string]traceEntry{}
	}
	if _, ok := traceCache.entries[path]; !ok {
		traceCache.order = append(traceCache.order, path)
		if len(traceCache.order) > traceCacheMax {
			delete(traceCache.entries, traceCache.order[0])
			traceCache.order = traceCache.order[1:]
		}
	}
	traceCache.entries[path] = traceEntry{recs: recs, size: fi.Size(), modTime: fi.ModTime()}
	traceCache.Unlock()
	return recs, nil
}

// key identifies the workload's exact trace for baseline caching. Records
// is normalized to the effective trace length, so the catalog default asked
// for explicitly and as 0 share one cache entry — the traces are identical.
// For workloads backed by an on-disk file (file:, champsim:, csv:) the key
// carries the file's size and mtime: a regenerated trace under the same path
// is a different trace and must not inherit the old baseline in a
// long-lived process (prophetd).
func (w Workload) key() string {
	records := w.Records
	if records == 0 {
		if wl, ok := workloads.Get(w.Name); ok {
			records = wl.Spec.Records
		} else if _, err := graphs.Parse(w.Name); err == nil {
			records = graphs.DefaultRecords
		}
	}
	if path := externalPath(w.Name); path != "" {
		if fi, err := os.Stat(path); err == nil {
			return fmt.Sprintf("%s@%d#%d.%d", w.Name, records, fi.Size(), fi.ModTime().UnixNano())
		}
	}
	return fmt.Sprintf("%s@%d", w.Name, records)
}

// Open returns a fresh deterministic trace source for the workload — the
// raw record stream the simulator consumes (used by tooling such as
// cmd/tracegen).
func (w Workload) Open() (mem.Source, error) {
	f, err := w.factory()
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// SourceFactory resolves the workload once and returns a factory of fresh
// deterministic trace sources — what multi-pass consumers (the experiments
// suite, custom pipelines) need, since a mem.Source is single-use.
func (w Workload) SourceFactory() (func() mem.Source, error) {
	f, err := w.factory()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// SourceInfo describes one workload-source prefix — how tooling (CLI help,
// the daemon's GET /v1/workloads) advertises where workload names can come
// from.
type SourceInfo struct {
	// Prefix is the literal name prefix ("file:", "champsim:"); empty for
	// the catalog/graph namespace.
	Prefix string `json:"prefix"`
	// Description is a one-line summary of the source.
	Description string `json:"description"`
}

// Sources lists every workload-source prefix this build resolves: the
// catalog/graph namespace, native trace replay, and each registered
// external-trace ingest format.
func Sources() []SourceInfo {
	out := []SourceInfo{
		{Prefix: "", Description: "catalog workload or graph grammar, resolved by name"},
		{Prefix: "file:", Description: "native trace file replay (tracegen output, gzip auto-detected)"},
	}
	for _, f := range ingest.Formats() {
		out = append(out, SourceInfo{Prefix: f.Name + ":", Description: f.Description})
	}
	return out
}

// Options configure the simulated system and the Prophet pipeline. The
// functional options of New cover the same knobs; Options remains the
// bulk-configuration form (WithOptions) and the deprecated shims' input.
type Options struct {
	// ELAcc is the Equation 1 insertion threshold (default 0.15).
	ELAcc float64
	// PriorityBits is Equation 2's n (default 2).
	PriorityBits int
	// MVBCandidates is the victim-buffer alternate budget (default 1).
	MVBCandidates int
	// LearningL is Equation 4's L (default 4).
	LearningL int
	// DRAMChannels widens memory bandwidth (default 1, Table 1).
	DRAMChannels int
	// IPCPPrefetcher replaces the L1 stride prefetcher with the IPCP-style
	// composite (Figure 17).
	IPCPPrefetcher bool
}

// DefaultOptions returns the paper's evaluated configuration.
func DefaultOptions() Options {
	return Options{ELAcc: 0.15, PriorityBits: 2, MVBCandidates: 1, LearningL: 4, DRAMChannels: 1}
}

func (o Options) pipelineConfig() pipeline.Config {
	cfg := pipeline.Default()
	if o.ELAcc > 0 {
		cfg.Analysis.ELAcc = o.ELAcc
	}
	if o.PriorityBits > 0 {
		cfg.Analysis.PriorityBits = o.PriorityBits
	}
	if o.MVBCandidates > 0 {
		cfg.Prophet.MVBCandidates = o.MVBCandidates
	}
	if o.LearningL > 0 {
		cfg.L = o.LearningL
	}
	if o.DRAMChannels > 1 {
		cfg.Sim.DRAM.Channels = o.DRAMChannels
	}
	if o.IPCPPrefetcher {
		cfg.Sim.L1PF = sim.L1IPCP
	}
	return cfg
}

// RunStats summarizes one simulation run. It is comparable: two identical
// runs produce equal RunStats values.
type RunStats struct {
	// IPC is instructions per cycle.
	IPC float64
	// Speedup is IPC relative to the no-temporal-prefetching baseline on
	// the same trace (1.0 for the baseline itself).
	Speedup float64
	// DRAMTraffic is total DRAM line transfers.
	DRAMTraffic uint64
	// NormalizedTraffic is DRAMTraffic relative to the baseline.
	NormalizedTraffic float64
	// Coverage is the demand-miss reduction vs the baseline.
	Coverage float64
	// Accuracy is useful/issued prefetches.
	Accuracy float64
	// MetaWays is the LLC ways held by the metadata table at end of run.
	MetaWays int
	// Raw exposes headline raw counters for tooling.
	Raw RawStats
}

// RawStats carries the un-normalized counters behind RunStats.
type RawStats struct {
	Instructions    uint64
	Cycles          uint64
	L1Hits          uint64
	L1Misses        uint64
	L2DemandMisses  uint64
	DRAMReads       uint64
	DRAMWrites      uint64
	TPIssued        uint64
	TPUseful        uint64
	TPUseless       uint64
	TableInsertions uint64
	TableLookups    uint64
	TableHits       uint64
}

func summarize(s sim.Stats, base sim.Stats) RunStats {
	return RunStats{
		IPC:               s.IPC(),
		Speedup:           stats.Speedup(s.IPC(), base.IPC()),
		DRAMTraffic:       s.DRAMTraffic(),
		NormalizedTraffic: stats.NormalizedTraffic(s.DRAMTraffic(), base.DRAMTraffic()),
		Coverage:          stats.Coverage(base.L2DemandMisses, s.L2DemandMisses),
		Accuracy:          s.TPAccuracy(),
		MetaWays:          s.MetaWays,
		Raw: RawStats{
			Instructions:    s.Core.Instructions,
			Cycles:          s.Core.Cycles,
			L1Hits:          s.L1.Hits,
			L1Misses:        s.L1.Misses,
			L2DemandMisses:  s.L2DemandMisses,
			DRAMReads:       s.DRAM.Reads,
			DRAMWrites:      s.DRAM.Writes,
			TPIssued:        s.TPIssued,
			TPUseful:        s.TPUseful,
			TPUseless:       s.TPUseless,
			TableInsertions: s.TableStats.Insertions,
			TableLookups:    s.TableStats.Lookups,
			TableHits:       s.TableStats.Hits,
		},
	}
}

// Scheme names a prefetching configuration resolved through the scheme
// registry.
type Scheme string

// The built-in schemes (each self-registered by its package).
const (
	Baseline Scheme = "baseline"
	Triage   Scheme = "triage"
	Triangel Scheme = "triangel"
	RPG2     Scheme = "rpg2"
	Prophet  Scheme = "prophet"
	Gaze     Scheme = "gaze"
	Adaptive Scheme = "adaptive"
)
