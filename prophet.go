// Package prophet is the public API of the Prophet reproduction: a
// profile-guided temporal prefetching framework (Li et al., ISCA 2025)
// implemented on top of a trace-driven CPU/cache/DRAM simulator.
//
// The package exposes three layers:
//
//   - Workload catalog: the SPEC-CPU-like irregular workloads and
//     CRONO-style graph workloads of the paper's evaluation, resolved by
//     name (Workload, Catalog).
//   - Scheme runners: execute a workload under the no-temporal-prefetching
//     baseline, the Triage and Triangel hardware prefetchers, the RPG2
//     software prefetching baseline, or Prophet (Evaluate*).
//   - The Prophet pipeline: the Figure 5 loop — Profile inputs with the
//     simplified prefetcher, Learn counters across inputs, Analyze into an
//     optimized Binary, and Run it (Pipeline, Binary).
//
// Everything is deterministic: the same calls return bit-identical results.
//
// Quickstart:
//
//	w, _ := prophet.Find("omnetpp")
//	p := prophet.NewPipeline(prophet.DefaultOptions())
//	p.ProfileInput(w)
//	bin := p.Optimize()
//	r := p.RunBinary(bin, w)
//	fmt.Printf("Prophet speedup: %.2fx\n", r.Speedup)
package prophet

import (
	"fmt"

	"prophet/internal/core"
	"prophet/internal/experiments"
	"prophet/internal/graphs"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/triage"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

// Workload identifies a runnable workload from the catalog.
type Workload struct {
	// Name is the catalog identifier ("mcf", "gcc_166", "bfs_100000_16").
	Name string
	// Records is the trace length in memory records (0 = catalog default).
	Records uint64

	factory pipeline.SourceFactory
}

// Catalog lists every available workload name: the SPEC-like set, all gcc /
// astar / soplex inputs, and the CRONO graph workloads.
func Catalog() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	for _, g := range graphs.CRONO() {
		out = append(out, g.Name)
	}
	return out
}

// Find resolves a workload by name. Graph workloads follow the
// algorithm_nodes_param grammar and need not be in the CRONO set.
func Find(name string) (Workload, error) {
	if w, ok := workloads.Get(name); ok {
		return Workload{Name: name, factory: func() mem.Source { return w.Source(0) }}, nil
	}
	if g, err := graphs.Parse(name); err == nil {
		return Workload{Name: name, factory: func() mem.Source { return g.Source(0) }}, nil
	}
	return Workload{}, fmt.Errorf("prophet: unknown workload %q", name)
}

// WithRecords returns a copy of the workload with an explicit trace length.
func (w Workload) WithRecords(records uint64) Workload {
	out := w
	out.Records = records
	if wl, ok := workloads.Get(w.Name); ok {
		out.factory = func() mem.Source { return wl.Source(records) }
	} else if g, err := graphs.Parse(w.Name); err == nil {
		out.factory = func() mem.Source { return g.Source(records) }
	}
	return out
}

func (w Workload) sourceFactory() pipeline.SourceFactory {
	if w.factory == nil {
		resolved, err := Find(w.Name)
		if err != nil {
			panic(err)
		}
		return resolved.factory
	}
	return w.factory
}

// Options configure the simulated system and the Prophet pipeline.
type Options struct {
	// ELAcc is the Equation 1 insertion threshold (default 0.15).
	ELAcc float64
	// PriorityBits is Equation 2's n (default 2).
	PriorityBits int
	// MVBCandidates is the victim-buffer alternate budget (default 1).
	MVBCandidates int
	// LearningL is Equation 4's L (default 4).
	LearningL int
	// DRAMChannels widens memory bandwidth (default 1, Table 1).
	DRAMChannels int
	// IPCPPrefetcher replaces the L1 stride prefetcher with the IPCP-style
	// composite (Figure 17).
	IPCPPrefetcher bool
}

// DefaultOptions returns the paper's evaluated configuration.
func DefaultOptions() Options {
	return Options{ELAcc: 0.15, PriorityBits: 2, MVBCandidates: 1, LearningL: 4, DRAMChannels: 1}
}

func (o Options) pipelineConfig() pipeline.Config {
	cfg := pipeline.Default()
	if o.ELAcc > 0 {
		cfg.Analysis.ELAcc = o.ELAcc
	}
	if o.PriorityBits > 0 {
		cfg.Analysis.PriorityBits = o.PriorityBits
	}
	if o.MVBCandidates > 0 {
		cfg.Prophet.MVBCandidates = o.MVBCandidates
	}
	if o.LearningL > 0 {
		cfg.L = o.LearningL
	}
	if o.DRAMChannels > 1 {
		cfg.Sim.DRAM.Channels = o.DRAMChannels
	}
	if o.IPCPPrefetcher {
		cfg.Sim.L1PF = sim.L1IPCP
	}
	return cfg
}

// RunStats summarizes one simulation run.
type RunStats struct {
	// IPC is instructions per cycle.
	IPC float64
	// Speedup is IPC relative to the no-temporal-prefetching baseline on
	// the same trace (1.0 for the baseline itself).
	Speedup float64
	// DRAMTraffic is total DRAM line transfers.
	DRAMTraffic uint64
	// NormalizedTraffic is DRAMTraffic relative to the baseline.
	NormalizedTraffic float64
	// Coverage is the demand-miss reduction vs the baseline.
	Coverage float64
	// Accuracy is useful/issued prefetches.
	Accuracy float64
	// MetaWays is the LLC ways held by the metadata table at end of run.
	MetaWays int
}

func summarize(s sim.Stats, base sim.Stats) RunStats {
	return RunStats{
		IPC:               s.IPC(),
		Speedup:           stats.Speedup(s.IPC(), base.IPC()),
		DRAMTraffic:       s.DRAMTraffic(),
		NormalizedTraffic: stats.NormalizedTraffic(s.DRAMTraffic(), base.DRAMTraffic()),
		Coverage:          stats.Coverage(base.L2DemandMisses, s.L2DemandMisses),
		Accuracy:          s.TPAccuracy(),
		MetaWays:          s.MetaWays,
	}
}

// Scheme names a prefetching configuration for Evaluate.
type Scheme string

// The evaluated schemes.
const (
	Baseline Scheme = "baseline"
	Triage   Scheme = "triage"
	Triangel Scheme = "triangel"
	RPG2     Scheme = "rpg2"
	Prophet  Scheme = "prophet"
)

// Evaluate runs a workload under the named scheme with default options,
// returning metrics normalized to the no-temporal-prefetching baseline.
// Prophet profiles the workload once before the measured run (the Direct
// flow of Figure 13).
func Evaluate(w Workload, scheme Scheme) (RunStats, error) {
	return EvaluateWith(w, scheme, DefaultOptions())
}

// EvaluateWith is Evaluate with explicit options.
func EvaluateWith(w Workload, scheme Scheme, opts Options) (RunStats, error) {
	cfg := opts.pipelineConfig()
	factory := w.sourceFactory()
	base := pipeline.RunBaseline(cfg.Sim, factory())
	switch scheme {
	case Baseline:
		return summarize(base, base), nil
	case Triage:
		return summarize(pipeline.RunTriage(cfg.Sim, triage.Default(), factory()), base), nil
	case Triangel:
		return summarize(pipeline.RunTriangel(cfg.Sim, triangel.Default(), factory()), base), nil
	case RPG2:
		res := pipeline.RunRPG2(cfg.Sim, factory, 0)
		return summarize(res.Stats, base), nil
	case Prophet:
		st, _ := pipeline.RunProphetDirect(cfg, factory)
		return summarize(st, base), nil
	}
	return RunStats{}, fmt.Errorf("prophet: unknown scheme %q", scheme)
}

// Binary represents an optimized binary: the original program plus the
// injected hint instructions and CSR manipulation (Section 4.4).
type Binary struct {
	// PCHints is the number of per-instruction hints injected (<= 128).
	PCHints int
	// MetaWays is the CSR resizing hint (Equation 3).
	MetaWays int
	// TPDisabled reports the Equation 3 disable verdict.
	TPDisabled bool

	hints   core.HintSet
	weights map[mem.Addr]uint64
}

// Pipeline is the stateful Figure 5 loop: Profile inputs, Learn across
// them, and Optimize into a Binary that adapts to every profiled input.
type Pipeline struct {
	opts Options
	p    *pipeline.Prophet
}

// NewPipeline starts an empty pipeline.
func NewPipeline(opts Options) *Pipeline {
	return &Pipeline{opts: opts, p: pipeline.NewProphet(opts.pipelineConfig())}
}

// ProfileInput executes Steps 1 and 3 for one input: run it under the
// simplified temporal prefetcher, collect PMU counters, and merge them into
// the persistent profile (Equations 4-5).
func (pl *Pipeline) ProfileInput(w Workload) {
	pl.p.ProfileAndLearn(w.sourceFactory()())
}

// Loops returns how many inputs have been learned.
func (pl *Pipeline) Loops() int { return pl.p.ProfileState().Loops }

// Optimize executes Step 2: analyze the merged counters into hints and
// "inject" them, producing the optimized Binary.
func (pl *Pipeline) Optimize() Binary {
	res := pl.p.Analyze()
	return Binary{
		PCHints:    len(res.Hints.PC),
		MetaWays:   res.Hints.MetaWays,
		TPDisabled: res.Hints.DisableTP,
		hints:      res.Hints,
		weights:    res.Weights,
	}
}

// RunBinary executes the optimized binary on a workload, returning metrics
// normalized to the no-temporal-prefetching baseline on the same trace.
func (pl *Pipeline) RunBinary(b Binary, w Workload) RunStats {
	cfg := pl.opts.pipelineConfig()
	factory := w.sourceFactory()
	base := pipeline.RunBaseline(cfg.Sim, factory())
	engine := core.New(cfg.Prophet, b.hints, b.weights)
	st := sim.Run(cfg.Sim, engine, nil, nil, nil, factory())
	return summarize(st, base)
}

// Experiment reproduces one of the paper's tables or figures by ID (see
// ExperimentIDs) and returns its rendered text.
func Experiment(id string, quick bool) (string, error) {
	res, err := experiments.Run(id, experiments.Options{Quick: quick})
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// ExperimentIDs lists the reproducible artifacts in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.Registry() {
		out = append(out, e.ID)
	}
	return out
}
