// Tests for the Evaluator/Session API: sweep determinism across worker
// counts, baseline-cache behavior, scheme-registry plumbing, context
// cancellation, and the error paths that replaced the old panics.
package prophet_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"prophet"

	"prophet/internal/registry"
	"prophet/internal/sim"
)

func testJobs(t *testing.T) []prophet.Job {
	t.Helper()
	var ws []prophet.Workload
	for _, name := range []string{"sphinx3", "xalancbmk"} {
		w, err := prophet.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w.WithRecords(30_000))
	}
	return prophet.Jobs(ws, prophet.Baseline, prophet.Triage, prophet.Triangel, prophet.Prophet)
}

// TestSweepParallelMatchesSerial pins the headline determinism contract:
// a Sweep on N workers returns bit-identical results to one worker.
func TestSweepParallelMatchesSerial(t *testing.T) {
	jobs := testJobs(t)
	serial, err := prophet.New(prophet.WithWorkers(1)).Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := prophet.New(prophet.WithWorkers(8)).Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths: serial=%d parallel=%d want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: serial=%v parallel=%v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Stats != parallel[i].Stats {
			t.Errorf("job %d (%s/%s) diverged:\n serial   %+v\n parallel %+v",
				i, jobs[i].Workload.Name, jobs[i].Scheme, serial[i].Stats, parallel[i].Stats)
		}
	}
}

// TestBaselineCacheHitsReturnIdenticalStats verifies the cache contract:
// repeat runs hit the cache and return identical RunStats.
func TestBaselineCacheHitsReturnIdenticalStats(t *testing.T) {
	ev := prophet.New(prophet.WithWorkers(2))
	w, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithRecords(30_000)

	first, err := ev.Run(context.Background(), w, prophet.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 1 {
		t.Fatalf("first run: %d cache misses, want 1", misses)
	}
	second, err := ev.Run(context.Background(), w, prophet.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cached baseline differs:\n first  %+v\n second %+v", first, second)
	}
	hits, misses := ev.BaselineCacheStats()
	if misses != 1 || hits < 1 {
		t.Fatalf("cache stats after repeat: hits=%d misses=%d, want >=1 hit and exactly 1 miss", hits, misses)
	}

	// A different scheme on the same workload divides by the same cached
	// baseline — no extra miss.
	if _, err := ev.Run(context.Background(), w, prophet.Triage); err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 1 {
		t.Fatalf("triage run re-simulated the baseline: misses=%d", misses)
	}

	// A different trace length is a different trace: new cache entry.
	if _, err := ev.Run(context.Background(), w.WithRecords(20_000), prophet.Baseline); err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 2 {
		t.Fatalf("records override shared a cache entry: misses=%d, want 2", misses)
	}
}

// TestBaselineKeyNormalizesDefaultRecords: Records=0 and the explicit
// catalog-default length are the same trace and must share a cache entry.
func TestBaselineKeyNormalizesDefaultRecords(t *testing.T) {
	ev := prophet.New()
	w, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background(), w, prophet.Baseline); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(context.Background(), w.WithRecords(220_000), prophet.Baseline); err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 1 {
		t.Fatalf("default-vs-explicit records did not share a cache entry: misses=%d", misses)
	}
}

// TestRegisterSchemeRejectsDuplicates covers registry plumbing end to end:
// built-ins are present, duplicates are rejected, and a custom scheme runs
// through the public API.
func TestRegisterSchemeRejectsDuplicates(t *testing.T) {
	ev := prophet.New()
	schemes := strings.Join(ev.Schemes(), ",")
	for _, want := range []string{"baseline", "triage", "triangel", "rpg2", "prophet"} {
		if !strings.Contains(schemes, want) {
			t.Fatalf("built-in scheme %q missing from %s", want, schemes)
		}
	}

	if err := prophet.RegisterScheme("triangel", func() registry.Scheme { return nil }); err == nil {
		t.Fatal("duplicate of built-in scheme accepted")
	}

	custom := prophet.SchemeFactory(func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			st := sim.Run(ctx.Sim, nil, nil, nil, nil, ctx.Factory())
			return registry.Result{Stats: st, Meta: map[string]int{"custom": 1}}, nil
		})
	})
	if err := prophet.RegisterScheme("test-noop", custom); err != nil {
		t.Fatal(err)
	}
	if err := prophet.RegisterScheme("test-noop", custom); err == nil {
		t.Fatal("duplicate custom scheme accepted")
	}

	w, _ := prophet.Find("sphinx3")
	rep, err := ev.RunDetailed(context.Background(), w.WithRecords(20_000), prophet.Scheme("test-noop"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Speedup != 1.0 {
		t.Fatalf("no-op custom scheme speedup %.3f, want exactly 1.0 (it is the baseline run)", rep.Stats.Speedup)
	}
	if rep.Meta["custom"] != 1 {
		t.Fatalf("custom scheme meta lost: %+v", rep.Meta)
	}
}

// TestSweepContextCancellation: a cancelled context aborts the sweep and
// marks undispatched jobs with the context error.
func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := prophet.New(prophet.WithWorkers(2))
	results, err := ev.Sweep(ctx, testJobs(t)...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep error = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d ran despite cancelled context", i)
		}
	}
}

// TestUnknownWorkloadSurfacesAsError pins the satellite fix: unknown names
// error out of Run (never panic), including hand-constructed workloads and
// WithRecords copies.
func TestUnknownWorkloadSurfacesAsError(t *testing.T) {
	ev := prophet.New()
	ctx := context.Background()

	if _, err := ev.Run(ctx, prophet.Workload{Name: "not_a_workload"}, prophet.Baseline); err == nil {
		t.Fatal("unknown hand-constructed workload accepted")
	}
	if _, err := ev.Run(ctx, prophet.Workload{Name: "nope"}.WithRecords(5_000), prophet.Baseline); err == nil {
		t.Fatal("WithRecords on an unknown workload must surface the error at Run")
	}
	if _, err := ev.Run(ctx, prophet.Workload{}, prophet.Baseline); err == nil {
		t.Fatal("zero workload accepted")
	}

	// A sweep keeps running: the bad row errors, the good row succeeds.
	good, _ := prophet.Find("sphinx3")
	results, err := ev.Sweep(ctx,
		prophet.Job{Workload: prophet.Workload{Name: "bogus"}, Scheme: prophet.Baseline},
		prophet.Job{Workload: good.WithRecords(20_000), Scheme: prophet.Baseline},
	)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("bogus sweep row did not error")
	}
	if results[1].Err != nil {
		t.Fatalf("valid sweep row failed: %v", results[1].Err)
	}

	// Unknown schemes error too, naming the registered set.
	if _, err := ev.Run(ctx, good, prophet.Scheme("warp-drive")); err == nil ||
		!strings.Contains(err.Error(), "registered") {
		t.Fatalf("unknown scheme error unhelpful: %v", err)
	}
}

// TestSessionMatchesDeprecatedPipeline: the shim and the Session produce
// identical results for the same flow.
func TestSessionMatchesDeprecatedPipeline(t *testing.T) {
	w, _ := prophet.Find("omnetpp")
	w = w.WithRecords(80_000)

	ev := prophet.New(prophet.WithWorkers(1))
	s := ev.NewSession()
	if err := s.Profile(w); err != nil {
		t.Fatal(err)
	}
	bin := s.Optimize()
	got, err := s.Run(context.Background(), bin, w)
	if err != nil {
		t.Fatal(err)
	}

	pl := prophet.NewPipeline(prophet.DefaultOptions())
	pl.ProfileInput(w)
	want := pl.RunBinary(pl.Optimize(), w)
	if err := pl.Err(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Session diverged from Pipeline shim:\n session  %+v\n pipeline %+v", got, want)
	}
	if hints := bin.Hints(); len(hints) != bin.PCHints {
		t.Fatalf("Binary.Hints returned %d entries, PCHints says %d", len(hints), bin.PCHints)
	}
}

// TestDeprecatedPipelineErrNoPanic: the old panic path now records an error.
func TestDeprecatedPipelineErrNoPanic(t *testing.T) {
	pl := prophet.NewPipeline(prophet.DefaultOptions())
	pl.ProfileInput(prophet.Workload{Name: "not_a_workload"})
	if pl.Err() == nil {
		t.Fatal("ProfileInput swallowed the unknown-workload error")
	}
}
