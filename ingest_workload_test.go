// Tests for the external-trace workload sources (champsim:<path>,
// csv:<path>): ingestion is deterministic across repeats and worker counts,
// conversion round-trips through the native format, resolution errors
// surface cleanly, and external-path results never reach a durable store.
package prophet_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"prophet"

	"prophet/internal/ingest"
	"prophet/internal/mem"
)

const champsimFixture = "champsim:testdata/sample.champsim.gz"

// TestExternalWorkloadDeterminism: ingesting the same external trace twice
// yields byte-identical RunStats, on one worker or eight, fresh evaluator or
// reused.
func TestExternalWorkloadDeterminism(t *testing.T) {
	ctx := context.Background()
	w, err := prophet.Find(champsimFixture)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []prophet.Scheme{prophet.Baseline, prophet.Triangel, prophet.Prophet}
	jobs := prophet.Jobs([]prophet.Workload{w}, schemes...)

	var want []prophet.Result
	for _, workers := range []int{1, 1, 8} {
		got, err := prophet.New(prophet.WithWorkers(workers)).Sweep(ctx, jobs...)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("%s under %s: %v", w.Name, schemes[i], r.Err)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i].Stats != want[i].Stats {
				t.Errorf("workers=%d scheme=%s diverged:\n got  %+v\n want %+v",
					workers, schemes[i], got[i].Stats, want[i].Stats)
			}
		}
	}
}

// TestExternalWorkloadConversionMatchesDirect: tracegen-style conversion to
// the native format and replay via file: produces the same RunStats as
// evaluating the champsim: source directly — the two paths decode the same
// access stream.
func TestExternalWorkloadConversionMatchesDirect(t *testing.T) {
	ctx := context.Background()
	direct, err := prophet.Find(champsimFixture)
	if err != nil {
		t.Fatal(err)
	}
	src, err := direct.Open()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "converted.trc.gz")
	if _, err := mem.WriteTraceFile(path, src); err != nil {
		t.Fatal(err)
	}
	converted, err := prophet.Find("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	ev := prophet.New(prophet.WithWorkers(1))
	want, err := ev.Run(ctx, direct, prophet.Triangel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Run(ctx, converted, prophet.Triangel)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("converted replay diverged from direct ingestion:\n file     %+v\n champsim %+v", got, want)
	}
}

// TestExternalWorkloadErrors: missing files, unknown prefixes, and corrupt
// traces fail at Find with classified errors — never a short silent stream.
func TestExternalWorkloadErrors(t *testing.T) {
	if _, err := prophet.Find("champsim:" + filepath.Join(t.TempDir(), "missing.champsim")); err == nil {
		t.Fatal("missing champsim trace accepted by Find")
	}
	if _, err := prophet.Find("avro:whatever"); err == nil {
		t.Fatal("unregistered format prefix accepted by Find")
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.champsim")
	if err := os.WriteFile(corrupt, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := prophet.Find("champsim:" + corrupt)
	if err == nil {
		t.Fatal("truncated champsim trace accepted by Find")
	}
	if !errors.Is(err, ingest.ErrBadTrace) {
		t.Fatalf("corrupt trace error %v not classified under ingest.ErrBadTrace", err)
	}
}

// memStore is a minimal concurrent ResultStore for observing writes.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (s *memStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	return b, ok
}

func (s *memStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string][]byte{}
	}
	s.m[key] = val
	return nil
}

func (s *memStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// TestExternalWorkloadNeverStored: external-path workloads must not write
// through to (or be served from) a durable result store — the file behind
// the name can change without the key noticing.
func TestExternalWorkloadNeverStored(t *testing.T) {
	ctx := context.Background()
	st := &memStore{}
	ev := prophet.New(prophet.WithWorkers(1), prophet.WithResultStore(st))
	w, err := prophet.Find(champsimFixture)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(ctx, w, prophet.Triangel); err != nil {
		t.Fatal(err)
	}
	if n := st.len(); n != 0 {
		t.Fatalf("external workload wrote %d durable store entries, want 0", n)
	}
	// A poisoned store entry for the same job must not be served either.
	job := prophet.Job{Workload: w, Scheme: prophet.Triangel}
	if err := st.Put(prophet.StoreKey(job), []byte(`{"stats":{}}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := prophet.StoreLookup(st, job); ok {
		t.Fatal("StoreLookup served a durable entry for an external-path workload")
	}
	// Catalog workloads keep writing through — the rule is scoped to
	// external paths.
	mcf, err := prophet.Find("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(ctx, mcf.WithRecords(5_000), prophet.Baseline); err != nil {
		t.Fatal(err)
	}
	if st.len() != 2 { // the poisoned entry + the catalog result
		t.Fatalf("catalog workload did not write through: store has %d entries", st.len())
	}
}

// TestSourcesAdvertised: the prefix table lists the catalog namespace,
// file:, and every registered ingest format.
func TestSourcesAdvertised(t *testing.T) {
	got := map[string]bool{}
	for _, s := range prophet.Sources() {
		got[s.Prefix] = true
	}
	for _, want := range []string{"", "file:", "champsim:", "csv:"} {
		if !got[want] {
			t.Errorf("Sources() missing prefix %q (got %v)", want, got)
		}
	}
}
