module prophet

go 1.24
