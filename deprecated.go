package prophet

import "context"

// This file keeps the pre-Evaluator entry points alive as thin shims for
// one release. They construct a throwaway single-worker Evaluator per call,
// so they retain the old cost model (no baseline reuse across calls) —
// migrate to New / Evaluator.Run / Evaluator.Sweep / Session to amortize
// baselines and sweep concurrently. See README.md for the migration table.

// Evaluate runs a workload under the named scheme with default options.
//
// Deprecated: use New().Run(ctx, w, scheme); a long-lived Evaluator caches
// the baseline across calls.
func Evaluate(w Workload, scheme Scheme) (RunStats, error) {
	return EvaluateWith(w, scheme, DefaultOptions())
}

// EvaluateWith is Evaluate with explicit options.
//
// Deprecated: use New(WithOptions(opts)).Run(ctx, w, scheme).
func EvaluateWith(w Workload, scheme Scheme, opts Options) (RunStats, error) {
	return New(WithOptions(opts), WithWorkers(1)).Run(context.Background(), w, scheme)
}

// Pipeline is the stateful Figure 5 loop of the old API.
//
// Deprecated: use Evaluator.NewSession. Session reports resolution errors
// per call instead of collecting them behind Err.
type Pipeline struct {
	s   *Session
	err error
}

// NewPipeline starts an empty pipeline.
//
// Deprecated: use New(WithOptions(opts)).NewSession().
func NewPipeline(opts Options) *Pipeline {
	return &Pipeline{s: New(WithOptions(opts), WithWorkers(1)).NewSession()}
}

// ProfileInput executes Steps 1 and 3 for one input. Unknown workloads no
// longer panic: the first error sticks and is reported by Err.
func (pl *Pipeline) ProfileInput(w Workload) {
	if err := pl.s.Profile(w); err != nil && pl.err == nil {
		pl.err = err
	}
}

// Loops returns how many inputs have been learned.
func (pl *Pipeline) Loops() int { return pl.s.Loops() }

// Err reports the first workload-resolution failure, if any.
func (pl *Pipeline) Err() error { return pl.err }

// Optimize executes Step 2, producing the optimized Binary.
func (pl *Pipeline) Optimize() Binary { return pl.s.Optimize() }

// RunBinary executes the optimized binary on a workload. On a resolution
// failure it returns zero stats and records the error for Err.
func (pl *Pipeline) RunBinary(b Binary, w Workload) RunStats {
	r, err := pl.s.Run(context.Background(), b, w)
	if err != nil && pl.err == nil {
		pl.err = err
	}
	return r
}
