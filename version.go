package prophet

import "runtime/debug"

// Version reports the build's version string: the module version when built
// from a tagged release, otherwise the VCS revision embedded by the Go
// toolchain ("devel-<rev12>", "+dirty" when the tree was modified), and
// "devel" when no build metadata is available (e.g. plain `go test`).
// Every cmd tool surfaces it behind -version, and the prophetd daemon at
// GET /v1/version.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return "devel-" + rev + dirty
}
