// Integration tests: cross-module invariants that tie the paper's mechanisms
// together end to end — profile-guided filtering reducing table pollution,
// CSR resizing reaching the LLC partition, the victim buffer recovering
// multi-path coverage, and learning transferring hints across inputs.
package prophet_test

import (
	"testing"

	"prophet/internal/core"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/workloads"
)

// noisyWorkload builds a workload dominated by one clean temporal stream and
// one random stream — the minimal insertion-policy scenario.
func noisyWorkload(records uint64) workloads.Workload {
	return workloads.Workload{Name: "it-noisy", Spec: workloads.Spec{
		Name: "it-noisy",
		Seed: 77,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.Temporal, Weight: 0.5, SeqLines: 4000, Gap: 3, PCSeed: 21},
			{Kind: workloads.RandomAccess, Weight: 0.5, Gap: 3, PCSeed: 22},
		},
		Records: records,
	}}
}

// TestInsertionFilterReducesTablePollution verifies Equation 1 end to end:
// with the profile-guided insertion policy on, the metadata table takes far
// fewer insertions on a half-random workload, while coverage of the clean
// stream survives.
func TestInsertionFilterReducesTablePollution(t *testing.T) {
	w := noisyWorkload(60_000)
	cfg := pipeline.Default()
	f := func() mem.Source { return w.Source(0) }
	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(f())

	unfiltered := p.RunWithFeatures(core.Features{Replacement: true}, f())
	filtered := p.RunWithFeatures(core.Features{Replacement: true, Insertion: true}, f())

	if filtered.TableStats.Insertions >= unfiltered.TableStats.Insertions {
		t.Fatalf("insertion filter did not reduce insertions: %d vs %d",
			filtered.TableStats.Insertions, unfiltered.TableStats.Insertions)
	}
	// The filter must cut insertions dramatically (the random stream is
	// half the trace) without destroying usefulness.
	if filtered.TableStats.Insertions > unfiltered.TableStats.Insertions*3/4 {
		t.Fatalf("filter too weak: %d vs %d insertions",
			filtered.TableStats.Insertions, unfiltered.TableStats.Insertions)
	}
	if filtered.TPUseful == 0 {
		t.Fatal("filtering killed all useful prefetches")
	}
}

// TestResizingReachesLLCPartition verifies Equation 3 end to end: a
// small-footprint workload yields a small CSR way count, and the simulated
// run leaves more LLC to demand than the fixed-table configuration.
func TestResizingReachesLLCPartition(t *testing.T) {
	// 14000 entries round to 16384 — above the half-way disable cutoff
	// (12288) but far below the 8-way maximum.
	w := workloads.Workload{Name: "it-small", Spec: workloads.Spec{
		Name: "it-small",
		Seed: 88,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.Temporal, Weight: 1, SeqLines: 14000, Gap: 3, PCSeed: 31},
		},
		Records: 60_000,
	}}
	cfg := pipeline.Default()
	f := func() mem.Source { return w.Source(0) }
	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(f())
	res := p.Analyze()
	if res.Hints.DisableTP {
		t.Fatal("small temporal workload should not disable TP")
	}
	if res.Hints.MetaWays >= 8 {
		t.Fatalf("14000-entry footprint produced %d ways; Equation 3 should shrink it", res.Hints.MetaWays)
	}
	st := p.RunWithFeatures(core.AllFeatures(), f())
	if st.MetaWays != res.Hints.MetaWays {
		t.Fatalf("run used %d ways, CSR said %d", st.MetaWays, res.Hints.MetaWays)
	}
}

// TestMVBRecoversMultiPathCoverage verifies Section 4.5 end to end: on a
// multi-path workload, enabling the victim buffer raises coverage.
func TestMVBRecoversMultiPathCoverage(t *testing.T) {
	// The sequence must exceed the L2 so there are misses to cover, and
	// repeat several times within the trace.
	w := workloads.Workload{Name: "it-mp", Spec: workloads.Spec{
		Name: "it-mp",
		Seed: 99,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.MultiPath, Weight: 1, SeqLines: 12000, Paths: 2, Gap: 3, PCSeed: 41},
		},
		Records: 100_000,
	}}
	cfg := pipeline.Default()
	f := func() mem.Source { return w.Source(0) }
	base := pipeline.RunBaseline(cfg.Sim, f())
	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(f())

	without := p.RunWithFeatures(core.Features{Replacement: true, Insertion: true}, f())
	with := p.RunWithFeatures(core.Features{Replacement: true, Insertion: true, MVB: true}, f())

	covWithout := float64(base.L2DemandMisses-without.L2DemandMisses) / float64(base.L2DemandMisses)
	covWith := float64(base.L2DemandMisses-with.L2DemandMisses) / float64(base.L2DemandMisses)
	if covWith <= covWithout {
		t.Fatalf("MVB did not raise coverage: %.3f vs %.3f", covWith, covWithout)
	}
}

// TestHintsTransferAcrossSharedPCs verifies the Figure 7 "Load A" case end
// to end: hints learned on one gcc input apply to another input's shared
// instructions without re-profiling.
func TestHintsTransferAcrossSharedPCs(t *testing.T) {
	a := workloads.GCC("166").Scaled(35)
	b := workloads.GCC("g23").Scaled(35) // shares Load A PCs with 166
	const records = 90_000
	cfg := pipeline.Default()

	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(a.Source(records))

	baseB := pipeline.RunBaseline(cfg.Sim, b.Source(records))
	crossB := p.Run(b.Source(records))
	if crossB.IPC() <= baseB.IPC() {
		t.Fatalf("hints from gcc_166 gave no gain on gcc_g23: %.4f vs %.4f",
			crossB.IPC(), baseB.IPC())
	}
}

// TestDisableTPVerdictRunsCleanly verifies the Equation 3 disable path: a
// workload with virtually no temporal content turns the prefetcher off and
// matches baseline behaviour.
func TestDisableTPVerdictRunsCleanly(t *testing.T) {
	w := workloads.Workload{Name: "it-rand", Spec: workloads.Spec{
		Name: "it-rand",
		Seed: 111,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.StreamScan, Weight: 1, SeqLines: 512, Gap: 3, PCSeed: 51},
		},
		Records: 30_000,
	}}
	cfg := pipeline.Default()
	f := func() mem.Source { return w.Source(0) }
	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(f())
	res := p.Analyze()
	st := p.Run(f())
	if res.Hints.DisableTP && st.TPIssued != 0 {
		t.Fatalf("TP disabled by CSR but %d prefetches issued", st.TPIssued)
	}
	if res.Hints.DisableTP && st.MetaWays != 0 {
		t.Fatalf("TP disabled but %d metadata ways allocated", st.MetaWays)
	}
}

// TestSimplifiedProfilingConfigIsUnbiased checks the Step 1 contract: the
// profiling run uses degree 1 and a fixed maximum table regardless of what
// the evaluation configuration says.
func TestSimplifiedProfilingConfigIsUnbiased(t *testing.T) {
	cfg := pipeline.Default()
	cfg.Prophet.Degree = 4
	p := pipeline.NewProphet(cfg)
	w := noisyWorkload(20_000)
	counters := p.Profile(w.Source(0))
	if counters.Insertions == 0 {
		t.Fatal("simplified profiling inserted nothing — filter must be off")
	}
}

// TestSchemesShareIdenticalTraces pins the methodology: every scheme must
// see the exact same access stream for a workload.
func TestSchemesShareIdenticalTraces(t *testing.T) {
	w := workloads.MCF()
	a := mem.Collect(w.Source(2000), 0)
	b := mem.Collect(w.Source(2000), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("source factory not reproducible")
		}
	}
}

// TestFullSystemSmallFootprintNoTPOverhead: when the temporal prefetcher
// has nothing to do (L1-resident working set), attaching Prophet must not
// slow the machine down materially.
func TestFullSystemSmallFootprintNoTPOverhead(t *testing.T) {
	var recs []mem.Access
	for i := 0; i < 30_000; i++ {
		recs = append(recs, mem.Access{PC: 0x600, Addr: mem.Addr(0x5000000 + (i%256)*64), Kind: mem.Load, Gap: 2})
	}
	cfg := pipeline.Default()
	base := pipeline.RunBaseline(cfg.Sim, mem.NewSliceSource(recs))
	engine := core.New(core.DefaultConfig(), core.HintSet{MetaWays: 8}, nil)
	withTP := sim.Run(cfg.Sim, engine, nil, nil, nil, mem.NewSliceSource(recs))
	if float64(withTP.Core.Cycles) > float64(base.Core.Cycles)*1.05 {
		t.Fatalf("idle TP cost %.1f%% cycles", 100*(float64(withTP.Core.Cycles)/float64(base.Core.Cycles)-1))
	}
}
