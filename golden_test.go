package prophet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"prophet"
)

// update regenerates the golden RunStats fixtures. The fixtures pin the
// simulator's observable behaviour: any engine change that alters a single
// counter or metric — however small — shows up as a byte diff here. They were
// generated before the hot-path optimization pass and must never drift; run
// `go test -run TestGoldenRunStats -update` only when a deliberate
// model-behaviour change is being made and reviewed.
var update = flag.Bool("update", false, "rewrite golden RunStats fixtures")

// goldenCells are the pinned workload x scheme cells. They cover the three
// temporal-scheme packages (triage, triangel, prophet via their shared
// table/compressor code), RPG2's software-prefetch flow, the plain baseline
// simulator, and the two extra scheme families (gaze's fused spatial-temporal
// engine and the phase-adaptive wrapper, which exercises the mid-run engine
// switch path).
var goldenCells = []struct {
	workload string
	scheme   prophet.Scheme
	records  uint64
}{
	{"mcf", prophet.Prophet, 20_000},
	{"omnetpp", prophet.Triangel, 20_000},
	{"sphinx3", prophet.Triage, 20_000},
	{"xalancbmk", prophet.RPG2, 20_000},
	{"mcf", prophet.Baseline, 20_000},
	{"omnetpp", prophet.Gaze, 20_000},
	{"sphinx3", prophet.Adaptive, 20_000},
}

func goldenPath(workload string, scheme prophet.Scheme) string {
	return filepath.Join("testdata", "golden", workload+"_"+string(scheme)+".json")
}

// TestGoldenRunStats locks the full RunStats (normalized metrics plus raw
// counters) of representative cells to committed fixtures, byte for byte.
// This is the determinism guard for the performance work: optimizations may
// change how fast the simulator runs, never what it computes.
func TestGoldenRunStats(t *testing.T) {
	ev := prophet.New(prophet.WithWorkers(1))
	for _, cell := range goldenCells {
		name := cell.workload + "/" + string(cell.scheme)
		t.Run(name, func(t *testing.T) {
			w, err := prophet.Find(cell.workload)
			if err != nil {
				t.Fatal(err)
			}
			st, err := ev.Run(context.Background(), w.WithRecords(cell.records), cell.scheme)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := goldenPath(cell.workload, cell.scheme)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("RunStats diverged from golden fixture %s\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenRunStatsRepeatable re-runs one golden cell twice on one evaluator
// and across two evaluators, requiring identical bytes — same seed and
// config must produce byte-identical RunStats within a process too.
func TestGoldenRunStatsRepeatable(t *testing.T) {
	w, err := prophet.Find("mcf")
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithRecords(20_000)
	marshal := func(ev *prophet.Evaluator) []byte {
		t.Helper()
		st, err := ev.Run(context.Background(), w, prophet.Prophet)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ev := prophet.New(prophet.WithWorkers(1))
	first := marshal(ev)
	if second := marshal(ev); !bytes.Equal(first, second) {
		t.Errorf("same evaluator, same cell: results differ\n%s\n%s", first, second)
	}
	if fresh := marshal(prophet.New(prophet.WithWorkers(1))); !bytes.Equal(first, fresh) {
		t.Errorf("fresh evaluator, same cell: results differ\n%s\n%s", first, fresh)
	}
}
