// Tests for the file:<path> workload source: exported traces (plain and
// gzip) round-trip through the full evaluation path with results identical
// to the generated workload they came from.
package prophet_test

import (
	"context"
	"path/filepath"
	"testing"

	"prophet"

	"prophet/internal/mem"
)

func exportTrace(t *testing.T, name string, records uint64, path string) {
	t.Helper()
	w, err := prophet.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := w.WithRecords(records).Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.WriteTraceFile(path, src); err != nil {
		t.Fatal(err)
	}
}

// TestFileWorkloadMatchesGenerated: evaluating file:<exported trace> equals
// evaluating the workload it was exported from, for both plain and gzip
// files.
func TestFileWorkloadMatchesGenerated(t *testing.T) {
	const records = 20_000
	dir := t.TempDir()
	plain := filepath.Join(dir, "sphinx3.trc")
	gz := filepath.Join(dir, "sphinx3.trc.gz")
	exportTrace(t, "sphinx3", records, plain)
	exportTrace(t, "sphinx3", records, gz)

	ctx := context.Background()
	orig, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	want, err := prophet.New(prophet.WithWorkers(1)).Run(ctx, orig.WithRecords(records), prophet.Triangel)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plain, gz} {
		fw, err := prophet.Find("file:" + path)
		if err != nil {
			t.Fatalf("Find(file:%s): %v", path, err)
		}
		got, err := prophet.New(prophet.WithWorkers(1)).Run(ctx, fw, prophet.Triangel)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("file:%s diverged from generated workload:\n file      %+v\n generated %+v", path, got, want)
		}
	}
}

// TestFileWorkloadErrors: missing and corrupt trace files surface as Find /
// Run errors, never panics.
func TestFileWorkloadErrors(t *testing.T) {
	if _, err := prophet.Find("file:" + filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Fatal("missing trace file accepted by Find")
	}
	ev := prophet.New()
	w := prophet.Workload{Name: "file:/definitely/not/a/real/path.trc"}
	if _, err := ev.Run(context.Background(), w, prophet.Baseline); err == nil {
		t.Fatal("missing trace file accepted by Run")
	}
}

// TestFileWorkloadRegeneratedFile: overwriting a trace file under the same
// path is a different trace — a long-lived evaluator must not serve the old
// baseline (or the old records) for it.
func TestFileWorkloadRegeneratedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.trc")
	exportTrace(t, "sphinx3", 20_000, path)

	ev := prophet.New(prophet.WithWorkers(1))
	ctx := context.Background()
	w := prophet.Workload{Name: "file:" + path}
	first, err := ev.Run(ctx, w, prophet.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 1 {
		t.Fatalf("misses=%d, want 1", misses)
	}

	// Regenerate the file with different content (different length ⇒
	// different size, so the identity changes even on coarse mtimes).
	exportTrace(t, "omnetpp", 15_000, path)
	second, err := ev.Run(ctx, w, prophet.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := ev.BaselineCacheStats(); misses != 2 {
		t.Fatalf("regenerated file reused the stale baseline entry: misses=%d, want 2", misses)
	}
	if first == second {
		t.Fatal("regenerated file returned identical stats to the old trace")
	}
}

// TestFileWorkloadWithRecords: a records override truncates the replayed
// trace, giving a distinct baseline-cache entry.
func TestFileWorkloadWithRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trc")
	exportTrace(t, "sphinx3", 20_000, path)
	fw, err := prophet.Find("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := fw.WithRecords(5_000).Open()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(mem.Collect(src, 0)); n != 5_000 {
		t.Fatalf("records override replayed %d records, want 5000", n)
	}
}
