// Adaptive: the Figure 13 scenario as an API walkthrough. A single gcc
// binary is profiled on a sequence of inputs; after each learning loop the
// same optimized binary is re-evaluated on every input, showing one binary
// converging to per-input "Direct" performance — including on an input
// (gcc_200) it never profiled, because gcc_expr shares its Load E behaviour.
//
// The evaluator's baseline cache makes the repeated re-evaluations cheap:
// each input's baseline is simulated once across all learning stages.
package main

import (
	"context"
	"fmt"
	"log"

	"prophet"
)

func main() {
	inputs := []string{"166", "200", "expr", "typeck", "expr2"}
	learnOrder := []string{"166", "expr", "typeck"}
	const records = 90_000

	ctx := context.Background()
	ev := prophet.New()

	resolve := func(in string) prophet.Workload {
		w, err := prophet.Find("gcc_" + in)
		if err != nil {
			log.Fatal(err)
		}
		return w.WithRecords(records)
	}

	s := ev.NewSession()

	fmt.Printf("%-22s", "stage \\ input")
	for _, in := range inputs {
		fmt.Printf(" %9s", in)
	}
	fmt.Println(" (Prophet IPC, one shared binary)")

	evalAll := func(stage string, bin prophet.Binary) {
		fmt.Printf("%-22s", stage)
		for _, in := range inputs {
			r, err := s.Run(ctx, bin, resolve(in))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.4f", r.IPC)
		}
		fmt.Println()
	}

	for _, in := range learnOrder {
		if err := s.Profile(resolve(in)); err != nil {
			log.Fatal(err)
		}
		bin := s.Optimize()
		evalAll(fmt.Sprintf("after learning %s", in), bin)
	}

	// The learning goal: each input profiled directly for itself. Direct
	// sessions share the evaluator, so they reuse the cached baselines
	// the learning stages already paid for.
	fmt.Printf("%-22s", "Direct (per-input)")
	for _, in := range inputs {
		direct := ev.NewSession()
		if err := direct.Profile(resolve(in)); err != nil {
			log.Fatal(err)
		}
		r, err := direct.Run(ctx, direct.Optimize(), resolve(in))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %9.4f", r.IPC)
	}
	fmt.Println()

	hits, misses := ev.BaselineCacheStats()
	fmt.Printf("\nbaseline cache: %d hits, %d misses across %d evaluations\n",
		hits, misses, (len(learnOrder)+1)*len(inputs))
	fmt.Println("\nNote how gcc_200 improves after learning gcc_expr without ever being profiled itself:")
	fmt.Println("the two inputs drive the binary's shared 'Load E' instructions the same way (Figure 7).")
}
