// Adaptive: the Figure 13 scenario as an API walkthrough. A single gcc
// binary is profiled on a sequence of inputs; after each learning loop the
// same optimized binary is re-evaluated on every input, showing one binary
// converging to per-input "Direct" performance — including on an input
// (gcc_200) it never profiled, because gcc_expr shares its Load E behaviour.
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	inputs := []string{"166", "200", "expr", "typeck", "expr2"}
	learnOrder := []string{"166", "expr", "typeck"}
	const records = 90_000

	resolve := func(in string) prophet.Workload {
		w, err := prophet.Find("gcc_" + in)
		if err != nil {
			log.Fatal(err)
		}
		return w.WithRecords(records)
	}

	p := prophet.NewPipeline(prophet.DefaultOptions())

	fmt.Printf("%-22s", "stage \\ input")
	for _, in := range inputs {
		fmt.Printf(" %9s", in)
	}
	fmt.Println(" (Prophet IPC, one shared binary)")

	evalAll := func(stage string, bin prophet.Binary) {
		fmt.Printf("%-22s", stage)
		for _, in := range inputs {
			r := p.RunBinary(bin, resolve(in))
			fmt.Printf(" %9.4f", r.IPC)
		}
		fmt.Println()
	}

	for _, in := range learnOrder {
		p.ProfileInput(resolve(in))
		bin := p.Optimize()
		evalAll(fmt.Sprintf("after learning %s", in), bin)
	}

	// The learning goal: each input profiled directly for itself.
	fmt.Printf("%-22s", "Direct (per-input)")
	for _, in := range inputs {
		direct := prophet.NewPipeline(prophet.DefaultOptions())
		direct.ProfileInput(resolve(in))
		r := direct.RunBinary(direct.Optimize(), resolve(in))
		fmt.Printf(" %9.4f", r.IPC)
	}
	fmt.Println()

	fmt.Println("\nNote how gcc_200 improves after learning gcc_expr without ever being profiled itself:")
	fmt.Println("the two inputs drive the binary's shared 'Load E' instructions the same way (Figure 7).")
}
