// Quickstart: profile one workload, build the optimized binary, and compare
// Prophet against the hardware baselines on it — the minimal end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	w, err := prophet.Find("omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the demo fast: a shorter trace than the evaluation default.
	w = w.WithRecords(120_000)

	// The Figure 5 pipeline: Step 1+3 (profile and learn), Step 2
	// (analyze into an optimized binary).
	p := prophet.NewPipeline(prophet.DefaultOptions())
	p.ProfileInput(w)
	bin := p.Optimize()
	fmt.Printf("optimized binary: %d PC hints, metadata ways=%d, disableTP=%v\n",
		bin.PCHints, bin.MetaWays, bin.TPDisabled)

	// Run the optimized binary and the baselines on the same trace.
	pr := p.RunBinary(bin, w)
	tr, err := prophet.Evaluate(w, prophet.Triangel)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := prophet.Evaluate(w, prophet.RPG2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %10s %10s %10s %10s\n", "scheme", "speedup", "coverage", "accuracy", "traffic")
	row := func(name string, r prophet.RunStats) {
		fmt.Printf("%-10s %9.3fx %9.1f%% %9.1f%% %9.3fx\n",
			name, r.Speedup, r.Coverage*100, r.Accuracy*100, r.NormalizedTraffic)
	}
	row("rpg2", rp)
	row("triangel", tr)
	row("prophet", pr)

	if pr.Speedup > tr.Speedup {
		fmt.Println("\nProphet's profile-guided metadata management beats the runtime scheme on this workload.")
	}
}
