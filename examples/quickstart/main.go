// Quickstart: profile one workload, build the optimized binary, and compare
// Prophet against the hardware baselines on it — the minimal end-to-end use
// of the Evaluator/Session API. The scheme comparison runs as one
// concurrent sweep sharing a single cached baseline simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"prophet"
)

func main() {
	ctx := context.Background()
	ev := prophet.New() // paper defaults, worker pool = all CPUs

	w, err := prophet.Find("omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the demo fast: a shorter trace than the evaluation default.
	w = w.WithRecords(120_000)

	// The Figure 5 pipeline: Step 1+3 (profile and learn), Step 2
	// (analyze into an optimized binary).
	s := ev.NewSession()
	if err := s.Profile(w); err != nil {
		log.Fatal(err)
	}
	bin := s.Optimize()
	fmt.Printf("optimized binary: %d PC hints, metadata ways=%d, disableTP=%v\n",
		bin.PCHints, bin.MetaWays, bin.TPDisabled)

	// Run the optimized binary and the baselines on the same trace. The
	// sweep fans rpg2 and triangel out concurrently; the session run and
	// both sweep jobs divide by one cached baseline simulation.
	pr, err := s.Run(ctx, bin, w)
	if err != nil {
		log.Fatal(err)
	}
	results, err := ev.Sweep(ctx,
		prophet.Jobs([]prophet.Workload{w}, prophet.RPG2, prophet.Triangel)...)
	if err != nil {
		log.Fatal(err)
	}
	rp, tr := results[0], results[1]
	if rp.Err != nil {
		log.Fatal(rp.Err)
	}
	if tr.Err != nil {
		log.Fatal(tr.Err)
	}

	fmt.Printf("\n%-10s %10s %10s %10s %10s\n", "scheme", "speedup", "coverage", "accuracy", "traffic")
	row := func(name string, r prophet.RunStats) {
		fmt.Printf("%-10s %9.3fx %9.1f%% %9.1f%% %9.3fx\n",
			name, r.Speedup, r.Coverage*100, r.Accuracy*100, r.NormalizedTraffic)
	}
	row("rpg2", rp.Stats)
	row("triangel", tr.Stats)
	row("prophet", pr)

	hits, misses := ev.BaselineCacheStats()
	fmt.Printf("\nbaseline cache: %d hits, %d misses (one no-TP simulation amortized over every scheme)\n", hits, misses)
	if pr.Speedup > tr.Stats.Speedup {
		fmt.Println("Prophet's profile-guided metadata management beats the runtime scheme on this workload.")
	}
}
