// Graphanalytics: evaluate the prefetching schemes on CRONO-style graph
// workloads (Figure 15's domain), including a custom graph size outside the
// paper's list — any algorithm_nodes_param name parses. The whole 3x3
// (workload, scheme) grid runs as one concurrent sweep; each workload's
// baseline is simulated once and shared by its three schemes.
package main

import (
	"context"
	"fmt"
	"log"

	"prophet"
)

func main() {
	names := []string{
		"sssp_100000_5",       // from Figure 15
		"pagerank_100000_100", // from Figure 15
		"bfs_50000_12",        // custom size: same grammar, new workload
	}

	var ws []prophet.Workload
	for _, name := range names {
		w, err := prophet.Find(name)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w.WithRecords(150_000))
	}

	ev := prophet.New()
	schemes := []prophet.Scheme{prophet.RPG2, prophet.Triangel, prophet.Prophet}
	results, err := ev.Sweep(context.Background(), prophet.Jobs(ws, schemes...)...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %10s %10s %10s\n", "workload", "rpg2", "triangel", "prophet")
	for i, w := range ws {
		row := results[i*len(schemes) : (i+1)*len(schemes)]
		for _, r := range row {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
		}
		fmt.Printf("%-22s %9.3fx %9.3fx %9.3fx\n", w.Name,
			row[0].Stats.Speedup, row[1].Stats.Speedup, row[2].Stats.Speedup)
	}
	fmt.Println("\nGraph gathers expose the multi-successor patterns (Figure 8) that make")
	fmt.Println("temporal prefetching hard; RPG2 thrives on the strided index kernels instead.")
}
