// Graphanalytics: evaluate the prefetching schemes on CRONO-style graph
// workloads (Figure 15's domain), including a custom graph size outside the
// paper's list — any algorithm_nodes_param name parses.
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	names := []string{
		"sssp_100000_5",       // from Figure 15
		"pagerank_100000_100", // from Figure 15
		"bfs_50000_12",        // custom size: same grammar, new workload
	}

	fmt.Printf("%-22s %10s %10s %10s\n", "workload", "rpg2", "triangel", "prophet")
	for _, name := range names {
		w, err := prophet.Find(name)
		if err != nil {
			log.Fatal(err)
		}
		w = w.WithRecords(150_000)
		rp, err := prophet.Evaluate(w, prophet.RPG2)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := prophet.Evaluate(w, prophet.Triangel)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := prophet.Evaluate(w, prophet.Prophet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9.3fx %9.3fx %9.3fx\n", name, rp.Speedup, tr.Speedup, pr.Speedup)
	}
	fmt.Println("\nGraph gathers expose the multi-successor patterns (Figure 8) that make")
	fmt.Println("temporal prefetching hard; RPG2 thrives on the strided index kernels instead.")
}
