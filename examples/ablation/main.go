// Ablation: the Figure 19 feature breakdown for a single workload, driven
// through the experiment harness — shows which of Prophet's mechanisms
// (replacement, insertion, MVB, resizing) pays off where. The experiment's
// workloads run on the evaluator's worker pool.
package main

import (
	"fmt"
	"log"

	"prophet"
)

func main() {
	ev := prophet.New() // worker pool = all CPUs; output is deterministic anyway
	out, err := ev.Experiment("F19", true /* quick */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Println("Interpretation guide (paper Section 5.9):")
	fmt.Println("  +Repla  — accuracy-prioritized replacement: biggest on omnetpp/mcf")
	fmt.Println("  +Insert — EL_ACC filtering of patternless PCs: biggest on mcf")
	fmt.Println("  +MVB    — multi-path victim buffer: biggest on soplex")
	fmt.Println("  +Resize — CSR-driven table sizing: biggest on small-footprint workloads")
}
